// Buffersizing: the §9 implication study. The paper argues buffer-sharing
// policy (the DT parameter alpha) should be tailored to a rack's contention
// regime: alpha matters most at low contention, and high-contention racks
// trade per-queue space against stability.
//
// This example asks the what-if question with the sweep engine: it re-runs a
// small fleet's busy hour under a grid of DT alphas plus the static and
// complete-sharing extremes, and renders each point's loss, ECN, and peak
// occupancy against the baseline — per contention class, so the low- and
// high-contention answers can be compared directly. The steady-state theory
// table (T = alpha*B/(1+alpha*S)) closes the loop on why the measured curves
// bend where they do.
//
// By default the sweep runs in a throwaway directory; pass -o to keep a
// resumable result directory instead (re-run with the same -o to reuse it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/sweep"
	"repro/internal/switchsim"
)

// spec is the example's grid: five DT alphas bracketing the baseline plus
// both sharing extremes, over a fleet small enough to sweep in seconds.
func spec() sweep.Spec {
	return sweep.Spec{
		Name: "buffersizing",
		Fleet: fleet.Config{
			Seed:           2024,
			RacksPerRegion: 2,
			ServersPerRack: 16,
			Hours:          []int{6},
			Buckets:        300,
		},
		Policies: []switchsim.Policy{
			switchsim.PolicyDT, switchsim.PolicyStatic, switchsim.PolicyComplete,
		},
		Alphas: []float64{0.25, 0.5, 1, 2, 4},
	}
}

func main() {
	out := flag.String("o", "", "keep a resumable sweep directory here (default: throwaway temp dir)")
	flag.Parse()

	dir := *out
	if dir == "" {
		tmp, err := os.MkdirTemp("", "buffersizing-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Println("What-if: buffer-sharing counterfactuals over one busy hour")
	fmt.Println()
	res, err := sweep.Run(context.Background(), dir, spec(), sweep.Options{})
	if err != nil {
		fail(err)
	}
	for _, r := range sweep.Report(res) {
		r.Render(os.Stdout)
		fmt.Println()
	}

	fmt.Println("theory shares per queue (fraction of the shared pool):")
	fmt.Printf("%7s", "alpha")
	for s := 1; s <= 8; s *= 2 {
		fmt.Printf("  S=%-5d", s)
	}
	fmt.Println()
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		fmt.Printf("%7.2f", alpha)
		for s := 1; s <= 8; s *= 2 {
			fmt.Printf("  %-7.3f", switchsim.SteadyShare(alpha, s))
		}
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "buffersizing:", err)
	os.Exit(1)
}
