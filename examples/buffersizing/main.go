// Buffersizing: the §9 implication study. The paper argues buffer-sharing
// policy (the DT parameter alpha) should be tailored to a rack's contention
// regime: alpha matters most at low contention, and high-contention racks
// trade per-queue space against stability.
//
// This example replays the same two workloads — a low-contention
// incast-heavy rack and a high-contention ML rack — under a sweep of alpha
// values and reports loss and ECN marking for each.
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func runRack(alpha float64, ml bool) (discards, marked, enqueued int64) {
	const servers = 16
	swCfg := switchsim.DefaultConfig(servers)
	swCfg.Alpha = alpha
	rack := testbed.NewRack(testbed.RackConfig{
		Servers: servers,
		Seed:    2024,
		Switch:  swCfg,
	})
	rng := rack.RNG.Fork(3)
	for s := 0; s < servers; s++ {
		var p workload.Profile
		switch {
		case ml:
			p = workload.MLTrain
		case s%4 == 0:
			p = workload.Cache // incast-heavy
		default:
			p = workload.PickTypical(rng)
		}
		workload.Install(rack, s, p, rng.Fork(uint64(s)))
	}
	rack.Eng.RunUntil(2 * sim.Second)
	t := rack.Switch.Totals()
	return t.DiscardSegments, t.ECNMarkedSegs, t.EnqueuedSegments
}

func main() {
	fmt.Println("DT alpha sweep over two 2-second rack workloads")
	fmt.Println("(theory: T = alpha*B/(1+alpha*S); alpha matters most at low contention)")
	fmt.Println()
	fmt.Printf("%7s  %28s  %28s\n", "", "-- low-contention rack --", "-- high-contention (ML) --")
	fmt.Printf("%7s  %9s %9s %8s  %9s %9s %8s\n",
		"alpha", "discards", "marked", "loss%", "discards", "marked", "loss%")
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		d1, m1, e1 := runRack(alpha, false)
		d2, m2, e2 := runRack(alpha, true)
		fmt.Printf("%7.2f  %9d %9d %7.3f%%  %9d %9d %7.3f%%\n",
			alpha,
			d1, m1, 100*float64(d1)/float64(e1+1),
			d2, m2, 100*float64(d2)/float64(e2+1))
	}
	fmt.Println()
	fmt.Println("theory shares per queue (fraction of the shared pool):")
	fmt.Printf("%7s", "alpha")
	for s := 1; s <= 8; s *= 2 {
		fmt.Printf("  S=%-5d", s)
	}
	fmt.Println()
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		fmt.Printf("%7.2f", alpha)
		for s := 1; s <= 8; s *= 2 {
			fmt.Printf("  %-7.3f", switchsim.SteadyShare(alpha, s))
		}
		fmt.Println()
	}
}
