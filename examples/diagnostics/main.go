// Diagnostics: the operational war stories of paper §4.2/§4.6, reproduced.
//
//  1. NIC firmware bug — the paper credits Millisampler with uncovering a
//     firmware bug "by isolating examples of packet loss although
//     utilization was low at fine time-scales". We inject silent NIC drops
//     under light load and show the tell-tale signature: retransmitted bytes
//     with no corresponding high-utilization samples.
//  2. Kernel soft-irq stall — "locking bugs in the kernel that prevent any
//     handling of network interrupts; Millisampler will see no data even
//     though the NIC is receiving, which can lead to additional apparent
//     bursts". We stall a host mid-run and show the silent gap followed by
//     an apparent burst.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	nicBug()
	fmt.Println()
	stallArtifact()
}

func sparkline(run *core.Run, kind int, cols int) string {
	marks := " .:-=+*#%@"
	per := run.Buckets / cols
	if per < 1 {
		per = 1
	}
	var sb strings.Builder
	var max float64
	vals := make([]float64, cols)
	for c := 0; c < cols; c++ {
		v := 0.0
		for i := c * per; i < (c+1)*per && i < run.Buckets; i++ {
			v += float64(run.Series(kind)[i])
		}
		vals[c] = v
		if v > max {
			max = v
		}
	}
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(marks)-1))
		}
		sb.WriteByte(marks[idx])
	}
	return sb.String()
}

func nicBug() {
	fmt.Println("=== diagnostic 1: NIC firmware bug (loss at low utilization) ===")
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: 61})
	// Smooth load only, no bursts — nowhere near buffer pressure.
	smooth := workload.Profile{Name: "smooth", BackgroundUtil: 0.08}
	workload.Install(rack, 0, smooth, rack.RNG.Fork(1))
	// The buggy NIC silently drops 0.2% of frames.
	rack.Servers[0].NICDropRate = 0.002

	s := core.NewSampler(rack.Servers[0], core.Config{Interval: sim.Millisecond, Buckets: 2000})
	s.Attach()
	s.Enable()
	rack.Eng.RunUntil(2100 * sim.Millisecond)
	run := s.Read()

	peak := 0.0
	for i := 0; i < run.Buckets; i++ {
		if u := run.Utilization(i); u > peak {
			peak = u
		}
	}
	fmt.Printf("ingress: %.2f MB, retransmitted: %.1f KB, NIC drops: %d\n",
		float64(run.TotalBytes(core.CtrIn))/1e6,
		float64(run.TotalBytes(core.CtrInRetx))/1e3,
		rack.Servers[0].NICDrops)
	fmt.Printf("peak 1ms utilization: %.1f%%  (switch discards: %d)\n",
		peak*100, rack.Switch.Totals().DiscardSegments)
	fmt.Printf("util |%s|\n", sparkline(run, core.CtrIn, 80))
	fmt.Printf("retx |%s|\n", sparkline(run, core.CtrInRetx, 80))
	if run.TotalBytes(core.CtrInRetx) > 0 && peak < 0.5 && rack.Switch.Totals().DiscardSegments == 0 {
		fmt.Println("signature confirmed: retransmissions with low utilization and zero")
		fmt.Println("switch discards -> loss is below the ToR, i.e. host/NIC side.")
	}
}

func stallArtifact() {
	fmt.Println("=== diagnostic 2: kernel soft-irq stall (apparent burst) ===")
	rack := testbed.NewRack(testbed.RackConfig{Servers: 4, Seed: 62})
	s := core.NewSampler(rack.Servers[0], core.Config{Interval: sim.Millisecond, Buckets: 400})
	s.Attach()
	s.Enable()

	// A steady 2 Gbps stream.
	c := rack.RemoteEPs[0].Connect(rack.Servers[0].ID, 80, transport.Options{})
	var feed func()
	feed = func() {
		c.Send(500 << 10)
		rack.Eng.After(2*sim.Millisecond, feed)
	}
	rack.Eng.After(0, feed)

	// The kernel locks up for 30 ms in the middle of the run.
	rack.Eng.At(150*sim.Millisecond, func() { rack.Servers[0].Stall(30 * sim.Millisecond) })
	rack.Eng.RunUntil(450 * sim.Millisecond)

	run := s.Read()
	fmt.Printf("util |%s|\n", sparkline(run, core.CtrIn, 100))
	// Locate the longest silent gap and the flush bucket that follows it.
	var gapStart, gapEnd, flushIdx int
	bestLen := 0
	curStart := -1
	in := run.Series(core.CtrIn)
	for i := 1; i < run.Buckets; i++ {
		if in[i] == 0 {
			if curStart < 0 {
				curStart = i
			}
			continue
		}
		if curStart >= 0 && i-curStart > bestLen {
			bestLen = i - curStart
			gapStart, gapEnd, flushIdx = curStart, i, i
		}
		curStart = -1
	}
	if flushIdx > 0 {
		fmt.Printf("silent gap: samples %d..%d; flush bucket %d carries %.2f MB (%.0f%% of line rate)\n",
			gapStart, gapEnd-1, flushIdx,
			float64(run.Series(core.CtrIn)[flushIdx])/1e6,
			run.Utilization(flushIdx)*100)
		fmt.Println("the NIC was receiving the whole time — the 'burst' is a host artifact,")
		fmt.Println("exactly the false-positive mode the paper warns about in §4.6.")
	}
}
