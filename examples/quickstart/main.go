// Quickstart: build a simulated rack, attach SyncMillisampler to every
// server, drive a mixed workload for one 2-second window, and print the
// contention statistics — the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	// A rack of 8 servers behind a shared-buffer ToR (16 MB, DT alpha=1,
	// 120 KB ECN threshold — the production configuration).
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 1})

	// Give each server a service: two ML-ingest servers, the rest a mix.
	rng := rack.RNG.Fork(1)
	profiles := []workload.Profile{
		workload.MLTrain, workload.MLTrain,
		workload.Web, workload.Cache,
		workload.Storage, workload.Batch,
		workload.Quiet, workload.Quiet,
	}
	if _, err := workload.InstallRack(rack, profiles, rng); err != nil {
		log.Fatal(err)
	}

	// SyncMillisampler: 1 ms sampling over 2000 buckets on every server,
	// scheduled in advance, harvested and aligned automatically.
	ctrl := core.NewController(rack, core.DefaultConfig())
	const start = 150 * sim.Millisecond
	if err := ctrl.Schedule(start); err != nil {
		log.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(start) + sim.Millisecond)

	sr, err := ctrl.Result()
	if err != nil {
		log.Fatal(err)
	}

	// Analyze: bursts (>50% line rate), contention, loss attribution.
	ra := analysis.Analyze(sr, analysis.DefaultOptions())
	fmt.Printf("aligned window: %d samples at %v\n", sr.Samples, sr.Interval)
	fmt.Printf("average contention: %.2f (p90 %.1f)\n", ra.AvgContention(), ra.P90Contention())

	contended, lossy := 0, 0
	for _, b := range ra.Bursts {
		if b.Contended() {
			contended++
		}
		if b.Lossy {
			lossy++
		}
	}
	fmt.Printf("bursts: %d total, %d contended, %d lossy\n", len(ra.Bursts), contended, lossy)
	for _, s := range ra.Servers {
		fmt.Printf("  server %d (%s): %5.1f%% avg util, %2d bursts, %.1f conns in-burst\n",
			s.Server, profiles[s.Server].Name, 100*s.AvgUtil, s.NumBursts, s.AvgConnsInside)
	}
	if drop, ok := ra.BufferShareDrop(); ok {
		fmt.Printf("per-queue buffer share drop within the run: %.1f%%\n", 100*drop)
	}
}
