// Incast: reproduce the loss mechanism the paper identifies — heavy incast
// with fresh connections overwhelms the dynamically shared buffer before
// DCTCP's RTT-timescale feedback can react, and contention from neighboring
// servers shrinks the available share further.
//
// The example runs the same fan-in twice: once against an otherwise idle
// rack, and once while three neighbor servers sustain ML-style ingest
// (contention), and compares discards and retransmissions.
package main

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
	"repro/internal/workload"
)

// incastOnce fans requests from `fan` fresh connections into server 0,
// optionally with contending neighbors, and reports what happened.
func incastOnce(fan int, withContention bool) (discards int64, retx int64, timeouts int64) {
	rack := testbed.NewRack(testbed.RackConfig{
		Servers: 16,
		Remotes: 4 * 16 * 2,
		Seed:    99,
	})
	if withContention {
		// Ports 4, 8 and 12 share server 0's buffer quadrant (port % 4), so
		// their sustained ingest depletes the same shared pool and shrinks
		// the DT threshold server 0's queue sees.
		for _, s := range []int{4, 8, 12} {
			workload.Install(rack, s, workload.MLTrain, rack.RNG.Fork(uint64(s)))
		}
		// Let the neighbors ramp up.
		rack.Eng.RunUntil(100 * sim.Millisecond)
	}

	// The incast: `fan` fresh connections each answering with one shard.
	const totalResponse = 4 << 20 // 4 MB answer fanned over the connections
	per := int64(totalResponse / fan)
	conns := make([]*transport.Conn, fan)
	for i := 0; i < fan; i++ {
		conns[i] = rack.RemoteEPs[i%len(rack.RemoteEPs)].Connect(
			rack.Servers[0].ID, 80, transport.Options{})
		conns[i].Send(per)
	}
	rack.Eng.RunUntil(rack.Eng.Now() + 2*sim.Second)

	st := rack.Switch.QueueStats(0)
	for _, c := range conns {
		retx += c.Stats.RetxSegs
		timeouts += c.Stats.Timeouts
	}
	return st.DiscardSegments, retx, timeouts
}

func main() {
	fmt.Println("fan-in sweep: 4 MB response fanned over N fresh DCTCP connections")
	fmt.Println("(initial windows collide in the shared buffer; DT caps a lone queue at ~1.8 MB)")
	fmt.Println()
	fmt.Printf("%8s  %22s  %22s\n", "", "-- idle rack --", "-- contended rack --")
	fmt.Printf("%8s  %8s %6s %6s  %8s %6s %6s\n",
		"fan-in", "discards", "retx", "RTOs", "discards", "retx", "RTOs")
	for _, fan := range []int{8, 32, 64, 128, 192, 256} {
		d1, r1, t1 := incastOnce(fan, false)
		d2, r2, t2 := incastOnce(fan, true)
		fmt.Printf("%8d  %8d %6d %6d  %8d %6d %6d\n", fan, d1, r1, t1, d2, r2, t2)
	}
	fmt.Println()
	fmt.Println("reading: loss appears once aggregate initial windows exceed the DT share,")
	fmt.Println("and the contended rack loses more at the same fan-in — the paper's Fig 19.")
	_ = netsim.FlagRetx
}
