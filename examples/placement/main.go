// Placement: the §9 implication that service placement shapes buffer
// contention. The paper traces RegA's high-contention racks to a placement
// decision that co-located one ML workload densely in a single data center.
//
// This example takes a fixed budget of ML-ingest servers plus a typical mix
// and places them two ways across a pair of racks:
//
//   - co-located: all ML servers packed into rack 0 (the RegA-High pattern);
//   - spread: ML servers split evenly across both racks.
//
// It then compares per-rack contention, loss and discard counters — and
// shows why the paper argues contention alone is a poor placement metric:
// the co-located rack has far more contention but not proportionally more
// loss.
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

const (
	servers   = 24
	mlServers = 20 // total ML budget across both racks
)

// buildRack simulates one rack carrying nML ML servers (the rest a typical
// mix) and returns its analyzed run plus discard count.
func buildRack(seed uint64, nML int) (*analysis.RunAnalysis, int64) {
	rack := testbed.NewRack(testbed.RackConfig{Servers: servers, Seed: seed})
	rng := rack.RNG.Fork(1)
	profiles := make([]workload.Profile, servers)
	for i := range profiles {
		if i < nML {
			if i%7 == 6 {
				profiles[i] = workload.MLReader
			} else {
				profiles[i] = workload.MLTrain
			}
		} else {
			profiles[i] = workload.PickTypical(rng)
		}
	}
	if _, err := workload.InstallRack(rack, profiles, rng); err != nil {
		panic(err)
	}
	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 1500, CountFlows: true})
	if err := ctrl.Schedule(150 * sim.Millisecond); err != nil {
		panic(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(150*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		panic(err)
	}
	return analysis.Analyze(sr, analysis.DefaultOptions()), rack.Switch.Totals().DiscardSegments
}

func report(label string, ra *analysis.RunAnalysis, discards int64) (bursts, lossy int) {
	for _, b := range ra.Bursts {
		if b.Lossy {
			lossy++
		}
	}
	bursts = len(ra.Bursts)
	lossPct := 0.0
	if bursts > 0 {
		lossPct = 100 * float64(lossy) / float64(bursts)
	}
	fmt.Printf("  %-22s avg contention %5.2f  p90 %4.1f  bursts %5d  lossy %5.2f%%  discards %d\n",
		label, ra.AvgContention(), ra.P90Contention(), bursts, lossPct, discards)
	return
}

func main() {
	fmt.Printf("placing %d ML servers over two %d-server racks\n\n", mlServers, servers)

	fmt.Println("co-located (RegA-High pattern): all ML in rack 0")
	raA, dA := buildRack(71, mlServers)
	raB, dB := buildRack(72, 0)
	b1, l1 := report("rack 0 (ML)", raA, dA)
	b2, l2 := report("rack 1 (typical)", raB, dB)

	fmt.Println("\nspread: ML split evenly")
	raC, dC := buildRack(73, mlServers/2)
	raD, dD := buildRack(74, mlServers/2)
	b3, l3 := report("rack 0 (half ML)", raC, dC)
	b4, l4 := report("rack 1 (half ML)", raD, dD)

	coLossy, coBursts := l1+l2, b1+b2
	spLossy, spBursts := l3+l4, b3+b4
	fmt.Printf("\naggregate lossy bursts: co-located %d/%d vs spread %d/%d\n",
		coLossy, coBursts, spLossy, spBursts)
	fmt.Println()
	fmt.Println("reading: co-location concentrates contention dramatically, but loss does")
	fmt.Println("not scale with it — adapted DCTCP flows tolerate persistent contention.")
	fmt.Println("A placement algorithm using contention as its only signal would spread")
	fmt.Println("the ML job without reducing loss; the paper argues for richer metrics")
	fmt.Println("that combine burst properties with contention (§9).")
}
