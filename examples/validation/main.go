// Validation: reproduce both experiments of paper §4.5.
//
//  1. Time synchronization — a rack-local multicast beacon is replicated by
//     the ToR to eight subscribed servers; with sub-millisecond NTP clocks,
//     every server's SyncMillisampler run shows the burst in the same 1 ms
//     sample.
//  2. Simultaneously bursty servers — five clients receive periodic 1.8 MB
//     bursts; the post-analysis must identify exactly five simultaneously
//     bursty servers.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	timeSync()
	fmt.Println()
	burstIdent()
}

func timeSync() {
	fmt.Println("=== validation 1: time synchronization (multicast beacon) ===")
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 4})
	subs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	beacon := workload.NewMulticastBeacon(rack, subs, 100*sim.Millisecond, 256<<10, 2_000_000_000)
	beacon.Start()

	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 1000})
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		log.Fatal(err)
	}

	// Print a zoomed view around the first beacon arrival, like Fig 3's
	// bottom panel.
	first := -1
	for i := range sr.Servers[0].In {
		if sr.Servers[0].In[i] > 1000 {
			first = i
			break
		}
	}
	if first < 0 {
		log.Fatal("no beacon observed")
	}
	lo, hi := first-3, first+4
	if lo < 0 {
		lo = 0
	}
	fmt.Printf("zoom on samples %d..%d (KB received per 1 ms sample):\n", lo, hi)
	for s := range sr.Servers {
		var sb strings.Builder
		for i := lo; i < hi && i < sr.Samples; i++ {
			fmt.Fprintf(&sb, "%7.1f", sr.Servers[s].In[i]/1024)
		}
		fmt.Printf("  server %d |%s\n", s, sb.String())
	}
	fmt.Println("expected: all eight rows show the burst in the same sample column")
	fmt.Printf("host clock offsets at harvest: ")
	for _, h := range rack.Servers {
		fmt.Printf("%+.0fµs ", float64(h.Clock.Offset(rack.Eng.Now()))/1000)
	}
	fmt.Println()
}

func burstIdent() {
	fmt.Println("=== validation 2: identifying simultaneously bursty servers ===")
	rack := testbed.NewRack(testbed.RackConfig{Servers: 8, Seed: 5})
	clients := []int{0, 1, 2, 3, 4}
	gen := workload.NewBurstGen(rack, clients, 100*sim.Millisecond, 1_800_000)
	gen.Start()

	ctrl := core.NewController(rack, core.Config{Interval: sim.Millisecond, Buckets: 1000, CountFlows: true})
	if err := ctrl.Schedule(20 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}
	rack.Eng.RunUntil(ctrl.HarvestAt(20*sim.Millisecond) + sim.Millisecond)
	sr, err := ctrl.Result()
	if err != nil {
		log.Fatal(err)
	}
	ra := analysis.Analyze(sr, analysis.DefaultOptions())

	max, maxAt := 0, 0
	for i, c := range ra.Contention {
		if c > max {
			max, maxAt = c, i
		}
	}
	fmt.Printf("clients: %d, periodic burst volume 1.8 MB every 100 ms\n", len(clients))
	fmt.Printf("max simultaneously bursty servers identified: %d (at sample %d)\n", max, maxAt)
	fmt.Printf("requests per client: %v\n", gen.Requests)
	perServer := map[int]int{}
	for _, b := range ra.Bursts {
		perServer[b.Server]++
	}
	for _, c := range clients {
		fmt.Printf("  client %d: %d bursts detected\n", c, perServer[c])
	}
	if max == len(clients) {
		fmt.Println("PASS: post-analysis identifies all bursty clients, as in the paper")
	} else {
		fmt.Println("MISMATCH: expected", len(clients))
	}
}
